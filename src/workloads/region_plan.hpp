/**
 * @file
 * Deterministic per-core region planning.
 *
 * The per-core region layout (scaled footprint, bump-allocated bases)
 * fully determines each core's reference stream for a given seed, so
 * it must be computed identically by System (live generation, data
 * region registration) and by the TraceArena (pre-generation). This
 * helper is that single source of truth: both call planCoreRegions()
 * so the two paths cannot drift.
 */

#ifndef DICE_WORKLOADS_REGION_PLAN_HPP
#define DICE_WORKLOADS_REGION_PLAN_HPP

#include <algorithm>
#include <vector>

#include "common/types.hpp"
#include "workloads/address_space.hpp"
#include "workloads/profile.hpp"

namespace dice
{

/** One core's private slice of the simulated physical line space. */
struct CoreRegion
{
    LineAddr start = 0;
    std::uint64_t lines = 0;
};

/**
 * Allocate one region per core, scaled so footprint/capacity pressure
 * matches the paper's Table 3 against a 1-GiB cache (profiles express
 * footprints relative to 1 GiB; @p reference_capacity rescales them).
 */
inline std::vector<CoreRegion>
planCoreRegions(std::uint32_t num_cores,
                std::uint64_t reference_capacity,
                const std::vector<WorkloadProfile> &profiles)
{
    const double scale = static_cast<double>(reference_capacity) /
                         static_cast<double>(1_GiB);
    AddressSpace space;
    std::vector<CoreRegion> regions;
    regions.reserve(num_cores);
    for (std::uint32_t cid = 0; cid < num_cores; ++cid) {
        const double bytes = profiles[cid].footprint_gb * scale *
                             static_cast<double>(1_GiB) /
                             static_cast<double>(num_cores);
        const auto lines = std::max<std::uint64_t>(
            512, static_cast<std::uint64_t>(bytes) / kLineSize);
        regions.push_back(CoreRegion{space.allocate(lines), lines});
    }
    return regions;
}

} // namespace dice

#endif // DICE_WORKLOADS_REGION_PLAN_HPP
