/**
 * @file
 * Workload profiles: the per-benchmark statistical descriptions from
 * which traces and line data are synthesized.
 *
 * Each profile is calibrated to the paper's Table 3 (footprint and L3
 * MPKI of the 8-copy rate-mode workload) and Figure 4 (fraction of
 * lines compressing to <=32 B / <=36 B and of adjacent pairs to
 * <=68 B). Real SPEC/GAP binaries and PinPoints slices are not
 * available offline; DESIGN.md documents this substitution.
 */

#ifndef DICE_WORKLOADS_PROFILE_HPP
#define DICE_WORKLOADS_PROFILE_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace dice
{

/** Statistical description of one benchmark. */
struct WorkloadProfile
{
    std::string name;

    /**
     * Total footprint of the 8-copy rate workload at paper scale
     * (i.e. relative to a 1-GiB L4), in GiB. The harness rescales it
     * with the simulated cache so footprint/capacity pressure matches.
     */
    double footprint_gb = 1.0;

    /** L3 misses per kilo-instruction (Table 3); sets access tempo. */
    double l3_mpki = 10.0;

    /**
     * Per-page compressibility class weights (they are normalized by
     * the generator). Classes map to real encodings:
     * zero -> ZCA 0 B; ptr -> BDI B8D1 16 B; ints -> BDI B4D1 20 B;
     * c36 -> BDI B4D2 36 B (pairs to 68 B with a shared base);
     * half -> FPC ~54 B; rand -> incompressible 64 B.
     */
    double w_zero = 0.05;
    double w_ptr = 0.15;
    double w_int = 0.15;
    double w_c36 = 0.10;
    double w_half = 0.25;
    double w_rand = 0.30;

    /** Access-pattern mix (normalized by the generator). */
    double seq_frac = 0.5;
    double stride_frac = 0.2;
    double rand_frac = 0.3;

    /** Fraction of accesses that are stores. */
    double write_frac = 0.3;

    /** Hot-region size as a fraction of the footprint. */
    double hot_frac = 0.25;
    /** Probability an access burst targets the hot region. */
    double hot_bias = 0.8;

    /**
     * Lines touched per random-access "object" (node/record size in
     * lines). Pointer-chasing codes with 64-128-B nodes touch line
     * pairs even under random traversal — the reuse BAI exploits.
     */
    std::uint32_t rand_obj_lines = 1;

    /**
     * Probability that a reference re-touches a recently-used line
     * (short-term temporal locality visible to the L3). The paper's
     * baseline L3 hit rate averages ~37%.
     */
    double l3_reuse_frac = 0.20;

    /** Distinct synthetic PCs (feeds the MAP-I predictor). */
    std::uint32_t num_pcs = 32;
};

/** The 16 memory-intensive SPEC 2006 rate workloads (Table 3). */
const std::vector<WorkloadProfile> &specRateSuite();

/** The 6 GAP graph workloads (Table 3). */
const std::vector<WorkloadProfile> &gapSuite();

/** The 13 non-memory-intensive SPEC workloads (Figure 13). */
const std::vector<WorkloadProfile> &nonIntensiveSuite();

/**
 * The 4 mixed workloads: each is 8 per-core profiles drawn from the
 * SPEC suite (paper Section 3.2).
 */
const std::vector<std::vector<WorkloadProfile>> &mixSuite();

/** Find a profile by name across all suites; fatal when unknown. */
const WorkloadProfile &profileByName(const std::string &name);

/** All 26 evaluation workloads: 16 SPEC rate + 4 MIX + 6 GAP names. */
std::vector<std::string> all26Names();

} // namespace dice

#endif // DICE_WORKLOADS_PROFILE_HPP
