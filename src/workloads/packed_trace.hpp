/**
 * @file
 * Packed, immutable storage for a pre-generated reference stream.
 *
 * A MemRef is 24 bytes; a sweep-scale stream (hundreds of thousands of
 * references per core, dozens of workloads) stored as MemRef arrays
 * would dominate the arena's memory budget. PackedTrace stores the
 * stream as separate planes instead:
 *
 *   - line:      8 B (full LineAddr)
 *   - gap_instr: 2 B (generator gaps are clamped well below 64 Ki;
 *                the rare larger value spills to a side table)
 *   - pc:        2 B index into a per-stream table of distinct PCs
 *                (bursts reuse a small PC set; see TraceGenerator)
 *   - is_write:  1 bit
 *
 * ~12.1 B per reference, about half the struct-of-MemRefs cost, while
 * at() reconstructs every reference bit-exactly.
 */

#ifndef DICE_WORKLOADS_PACKED_TRACE_HPP
#define DICE_WORKLOADS_PACKED_TRACE_HPP

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/flat_map.hpp"
#include "common/log.hpp"
#include "common/types.hpp"
#include "workloads/tracegen.hpp"

namespace dice
{

/** One core's reference stream in packed plane form. */
class PackedTrace
{
  public:
    /** Plane value meaning "look up the side table instead". */
    static constexpr std::uint16_t kOverflow = 0xFFFF;

    void
    reserve(std::size_t refs)
    {
        line_.reserve(refs);
        gap_.reserve(refs);
        pc_idx_.reserve(refs);
        write_bits_.reserve((refs + 63) / 64);
    }

    /** Append one reference (build phase only). */
    void
    append(const MemRef &ref)
    {
        const std::size_t i = line_.size();
        line_.push_back(ref.line);

        if (ref.gap_instr < kOverflow) {
            gap_.push_back(static_cast<std::uint16_t>(ref.gap_instr));
        } else {
            gap_.push_back(kOverflow);
            gap_overflow_.emplace_back(i, ref.gap_instr);
        }

        pc_idx_.push_back(pcIndexFor(i, ref.pc));

        if (i % 64 == 0)
            write_bits_.push_back(0);
        if (ref.is_write)
            write_bits_[i / 64] |= std::uint64_t{1} << (i % 64);
    }

    /** Drop build-only lookup state; call once generation is done. */
    void
    seal()
    {
        pc_lookup_ = FlatMap<std::uint64_t, std::uint32_t>{};
        line_.shrink_to_fit();
        gap_.shrink_to_fit();
        pc_idx_.shrink_to_fit();
        write_bits_.shrink_to_fit();
        pc_table_.shrink_to_fit();
        gap_overflow_.shrink_to_fit();
        pc_overflow_.shrink_to_fit();
    }

    std::size_t size() const { return line_.size(); }

    /** Reconstruct reference @p i exactly as the generator emitted it. */
    MemRef
    at(std::size_t i) const
    {
        MemRef ref;
        ref.line = line_[i];
        ref.is_write =
            (write_bits_[i / 64] >> (i % 64)) & std::uint64_t{1};

        const std::uint16_t g = gap_[i];
        ref.gap_instr = g != kOverflow ? g : sideValue(gap_overflow_, i);

        const std::uint16_t p = pc_idx_[i];
        ref.pc = p != kOverflow ? pc_table_[p]
                                : sideValue(pc_overflow_, i);
        return ref;
    }

    /** Resident bytes (planes + side tables), for the arena budget. */
    std::size_t
    bytes() const
    {
        return line_.capacity() * sizeof(LineAddr) +
               gap_.capacity() * sizeof(std::uint16_t) +
               pc_idx_.capacity() * sizeof(std::uint16_t) +
               write_bits_.capacity() * sizeof(std::uint64_t) +
               pc_table_.capacity() * sizeof(std::uint64_t) +
               gap_overflow_.capacity() * sizeof(gap_overflow_[0]) +
               pc_overflow_.capacity() * sizeof(pc_overflow_[0]) +
               pc_lookup_.capacity() *
                   (sizeof(std::uint64_t) + sizeof(std::uint32_t) + 1);
    }

    std::size_t distinctPcs() const { return pc_table_.size(); }

    /**
     * Append this stream's planes to @p out in the arena-store wire
     * format: four u64 counts, then the raw plane bytes with every
     * 8-byte-element section leading and the 2-byte planes trailing,
     * padded so each stream record starts 8-byte aligned. Planes are
     * written in host byte order — the on-disk cache is shared across
     * processes (and same-architecture machines on a shared
     * filesystem), not across architectures.
     */
    void
    serializeTo(std::string &out) const
    {
        appendU64(out, line_.size());
        appendU64(out, pc_table_.size());
        appendU64(out, gap_overflow_.size());
        appendU64(out, pc_overflow_.size());
        appendRaw(out, line_.data(), line_.size() * sizeof(LineAddr));
        appendRaw(out, write_bits_.data(),
                  write_bits_.size() * sizeof(std::uint64_t));
        appendRaw(out, pc_table_.data(),
                  pc_table_.size() * sizeof(std::uint64_t));
        // Overflow entries are written field-by-field (u64 index, u64
        // value): std::pair layout/padding is not a wire format.
        for (const auto &[idx, v] : gap_overflow_) {
            appendU64(out, idx);
            appendU64(out, v);
        }
        for (const auto &[idx, v] : pc_overflow_) {
            appendU64(out, idx);
            appendU64(out, v);
        }
        appendRaw(out, gap_.data(), gap_.size() * sizeof(std::uint16_t));
        appendRaw(out, pc_idx_.data(),
                  pc_idx_.size() * sizeof(std::uint16_t));
        while (out.size() % 8 != 0)
            out.push_back('\0');
    }

    /**
     * Rebuild a stream from serializeTo() bytes at @p offset within
     * [@p data, @p data + @p size), advancing @p offset past the
     * record. Returns false (leaving this trace unspecified) on any
     * truncated or malformed record; never reads out of bounds. The
     * result is sealed — append() must not be called on it.
     */
    bool
    deserializeFrom(const char *data, std::size_t size,
                    std::size_t &offset)
    {
        std::uint64_t n = 0, n_pc = 0, n_gap_ov = 0, n_pc_ov = 0;
        if (!readU64(data, size, offset, n) ||
            !readU64(data, size, offset, n_pc) ||
            !readU64(data, size, offset, n_gap_ov) ||
            !readU64(data, size, offset, n_pc_ov))
            return false;
        // A record can never be larger than the bytes that remain.
        if (n > size || n_pc > size || n_gap_ov > size ||
            n_pc_ov > size)
            return false;
        const std::size_t words = (n + 63) / 64;
        if (!readVec(data, size, offset, line_, n) ||
            !readVec(data, size, offset, write_bits_, words) ||
            !readVec(data, size, offset, pc_table_, n_pc))
            return false;
        gap_overflow_.clear();
        gap_overflow_.reserve(n_gap_ov);
        for (std::uint64_t i = 0; i < n_gap_ov; ++i) {
            std::uint64_t idx = 0, v = 0;
            if (!readU64(data, size, offset, idx) ||
                !readU64(data, size, offset, v) ||
                v > 0xFFFFFFFFull)
                return false;
            gap_overflow_.emplace_back(idx,
                                       static_cast<std::uint32_t>(v));
        }
        pc_overflow_.clear();
        pc_overflow_.reserve(n_pc_ov);
        for (std::uint64_t i = 0; i < n_pc_ov; ++i) {
            std::uint64_t idx = 0, v = 0;
            if (!readU64(data, size, offset, idx) ||
                !readU64(data, size, offset, v))
                return false;
            pc_overflow_.emplace_back(idx, v);
        }
        if (!readVec(data, size, offset, gap_, n) ||
            !readVec(data, size, offset, pc_idx_, n))
            return false;
        while (offset % 8 != 0) {
            if (offset >= size)
                return false;
            ++offset;
        }
        pc_lookup_ = FlatMap<std::uint64_t, std::uint32_t>{};
        return true;
    }

  private:
    static void
    appendU64(std::string &out, std::uint64_t v)
    {
        char buf[sizeof v];
        std::memcpy(buf, &v, sizeof v);
        out.append(buf, sizeof v);
    }

    static void
    appendRaw(std::string &out, const void *p, std::size_t bytes)
    {
        if (bytes != 0)
            out.append(static_cast<const char *>(p), bytes);
    }

    static bool
    readU64(const char *data, std::size_t size, std::size_t &offset,
            std::uint64_t &v)
    {
        if (offset > size || size - offset < sizeof v)
            return false;
        std::memcpy(&v, data + offset, sizeof v);
        offset += sizeof v;
        return true;
    }

    template <typename T>
    static bool
    readVec(const char *data, std::size_t size, std::size_t &offset,
            std::vector<T> &out, std::uint64_t count)
    {
        if (offset > size || count > (size - offset) / sizeof(T))
            return false;
        out.resize(count);
        if (count != 0)
            std::memcpy(out.data(), data + offset, count * sizeof(T));
        out.shrink_to_fit();
        offset += count * sizeof(T);
        return true;
    }

    /** Intern @p pc; returns its table index or kOverflow (spilled). */
    std::uint16_t
    pcIndexFor(std::size_t i, std::uint64_t pc)
    {
        if (auto *idx = pc_lookup_.find(pc))
            return static_cast<std::uint16_t>(*idx);
        if (pc_table_.size() < kOverflow) {
            const auto idx =
                static_cast<std::uint32_t>(pc_table_.size());
            pc_table_.push_back(pc);
            pc_lookup_.insert_or_assign(pc, idx);
            return static_cast<std::uint16_t>(idx);
        }
        pc_overflow_.emplace_back(i, pc);
        return kOverflow;
    }

    /** Binary-search a (monotonic-index, value) side table. */
    template <typename V>
    static V
    sideValue(const std::vector<std::pair<std::uint64_t, V>> &side,
              std::size_t i)
    {
        const auto it = std::lower_bound(
            side.begin(), side.end(), i,
            [](const auto &e, std::size_t key) { return e.first < key; });
        dice_assert(it != side.end() && it->first == i,
                    "packed trace: missing overflow entry for ref %zu",
                    i);
        return it->second;
    }

    std::vector<LineAddr> line_;
    std::vector<std::uint16_t> gap_;
    std::vector<std::uint16_t> pc_idx_;
    std::vector<std::uint64_t> write_bits_;
    std::vector<std::uint64_t> pc_table_;

    /** Rare spills, sorted by reference index (appends are monotonic). */
    std::vector<std::pair<std::uint64_t, std::uint32_t>> gap_overflow_;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pc_overflow_;

    /** Build-phase interning map; emptied by seal(). */
    FlatMap<std::uint64_t, std::uint32_t> pc_lookup_;
};

} // namespace dice

#endif // DICE_WORKLOADS_PACKED_TRACE_HPP
