#include "datagen.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace dice
{

const char *
compClassName(CompClass cls)
{
    switch (cls) {
      case CompClass::Zero:
        return "zero";
      case CompClass::Ptr:
        return "ptr";
      case CompClass::Int:
        return "int";
      case CompClass::C36:
        return "c36";
      case CompClass::Half:
        return "half";
      case CompClass::Rand:
        return "rand";
      default:
        return "?";
    }
}

void
DataGenerator::addRegion(LineAddr start, LineAddr end,
                         const WorkloadProfile &profile)
{
    dice_assert(start < end, "empty data region");
    Region reg{start, end, &profile, {}};
    const double weights[6] = {profile.w_zero, profile.w_ptr,
                               profile.w_int, profile.w_c36,
                               profile.w_half, profile.w_rand};
    double acc = 0.0;
    for (int i = 0; i < 6; ++i) {
        acc += weights[i];
        reg.cum_weights[i] = acc;
    }
    dice_assert(acc > 0.0, "profile %s has zero class weights",
                profile.name.c_str());
    // Keep regions_ sorted by start so lookups can binary-search.
    // Regions come from a bump allocator and never overlap.
    const auto pos = std::lower_bound(
        regions_.begin(), regions_.end(), start,
        [](const Region &r, LineAddr s) { return r.start < s; });
    regions_.insert(pos, reg);
}

const DataGenerator::Region *
DataGenerator::regionOf(LineAddr line) const
{
    // First region with start > line; its predecessor is the only
    // candidate that can contain the line (regions are disjoint).
    const auto it = std::upper_bound(
        regions_.begin(), regions_.end(), line,
        [](LineAddr l, const Region &r) { return l < r.start; });
    if (it == regions_.begin())
        return nullptr;
    const Region &r = *(it - 1);
    return line < r.end ? &r : nullptr;
}

CompClass
DataGenerator::pageClass(LineAddr line) const
{
    return regionClass(regionOf(line), line);
}

CompClass
DataGenerator::regionClass(const Region *r, LineAddr line) const
{
    if (!r)
        return CompClass::Rand; // Unowned space: treat as garbage.

    // cum_weights was prefix-summed once at addRegion() time, so the
    // per-line draw only scales and scans.
    const std::uint64_t page = pageOfLine(line);
    const double u =
        static_cast<double>(mix64(page, 0xC1A55ull) >> 11) * 0x1.0p-53 *
        r->cum_weights[5];
    for (int i = 0; i < 6; ++i) {
        if (u < r->cum_weights[i])
            return static_cast<CompClass>(i);
    }
    return CompClass::Rand;
}

CompClass
DataGenerator::lineClass(LineAddr line) const
{
    // A small fraction of lines deviate from their page's class so
    // that predictor accuracy saturates near (not at) 100%. Noise is
    // applied at pair granularity so both halves of a spatial pair
    // stay coherent.
    const std::uint64_t pair = line >> 1;
    const double u =
        static_cast<double>(mix64(pair, 0x0D15Eull) >> 11) * 0x1.0p-53;
    if (u < kNoiseFraction)
        return CompClass::Rand;
    return pageClass(line);
}

namespace
{

void
storeU32(Line &out, std::uint32_t idx, std::uint32_t v)
{
    std::memcpy(out.data() + 4 * idx, &v, 4);
}

void
storeU64(Line &out, std::uint32_t idx, std::uint64_t v)
{
    std::memcpy(out.data() + 8 * idx, &v, 8);
}

} // namespace

Line
DataGenerator::synthesize(CompClass cls, LineAddr line,
                          std::uint64_t version)
{
    Line out{};
    const std::uint64_t page = pageOfLine(line);
    const std::uint64_t seed = mix64(line, version);

    switch (cls) {
      case CompClass::Zero:
        return out;

      case CompClass::Ptr: {
        // Pointer-like 8-byte elements around one per-page base, with
        // byte-range offsets: BDI B8D1 (16 B); a spatial pair shares
        // the page base, so the joint encoding is 24 B.
        const std::uint64_t base =
            (mix64(page, 0xB45Eull) | (std::uint64_t{1} << 44)) &
            ~std::uint64_t{0xFF};
        for (std::uint32_t i = 0; i < 8; ++i)
            storeU64(out, i, base + (mix64(seed, i) & 0x7F));
        return out;
      }

      case CompClass::Int: {
        // Small signed 4-byte integers: FPC Sign8 / BDI B4D1 (20 B).
        for (std::uint32_t i = 0; i < 16; ++i) {
            const auto v = static_cast<std::int32_t>(
                               mix64(seed, i) % 200) - 100;
            storeU32(out, i, static_cast<std::uint32_t>(v));
        }
        return out;
      }

      case CompClass::C36: {
        // 4-byte values = large per-page base + 16-bit deltas: only
        // BDI B4D2 (exactly 36 B) succeeds; a pair sharing the page
        // base encodes to exactly 68 B — the paper's threshold case.
        const std::uint32_t base =
            0x40000000u |
            (static_cast<std::uint32_t>(mix64(page, 0xC36ull)) &
             0x0FFF0000u);
        // Deltas stay within +/-15000 so that *cross-line* deltas in a
        // shared-base pair encoding still fit signed 16 bits.
        for (std::uint32_t i = 0; i < 16; ++i) {
            const auto delta = static_cast<std::int32_t>(
                                   mix64(seed, i) % 30000) - 15000;
            storeU32(out, i,
                     static_cast<std::uint32_t>(
                         static_cast<std::int32_t>(base) + delta));
        }
        return out;
      }

      case CompClass::Half: {
        // Alternate small-magnitude and full-entropy words: FPC packs
        // the former, stores the latter raw (~54 B); BDI fails.
        for (std::uint32_t i = 0; i < 16; ++i) {
            if (i % 2 == 0) {
                const auto v = static_cast<std::int32_t>(
                                   mix64(seed, i) % 20000) - 10000;
                storeU32(out, i, static_cast<std::uint32_t>(v));
            } else {
                storeU32(out, i,
                         static_cast<std::uint32_t>(mix64(seed, i)) |
                             0x01010000u);
            }
        }
        return out;
      }

      case CompClass::Rand:
      default: {
        for (std::uint32_t i = 0; i < 8; ++i)
            storeU64(out, i, mix64(seed, 0xFFEEull + i) | 0x0101010101010101ull);
        return out;
      }
    }
}

Line
DataGenerator::bytes(LineAddr line, std::uint64_t version) const
{
    return synthesize(lineClass(line), line, version);
}

void
DataGenerator::bytesPair(LineAddr base, std::uint64_t even_version,
                         std::uint64_t odd_version, Line out[2]) const
{
    dice_assert((base & 1) == 0, "pair base must be even");
    // The halves share their noise draw (pair-granular) and their page,
    // and region starts are page-aligned (and hence even), so they
    // classify identically unless the pair straddles a region's
    // possibly mid-page *end* — then the odd half falls back to its
    // own classification.
    const Region *r = regionOf(base);
    const double u =
        static_cast<double>(mix64(base >> 1, 0x0D15Eull) >> 11) *
        0x1.0p-53;
    const CompClass cls =
        u < kNoiseFraction ? CompClass::Rand : regionClass(r, base);
    out[0] = synthesize(cls, base, even_version);
    if (!r || (base | 1) < r->end)
        out[1] = synthesize(cls, base | 1, odd_version);
    else
        out[1] = bytes(base | 1, odd_version);
}

} // namespace dice
