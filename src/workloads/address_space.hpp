/**
 * @file
 * Simple physical address-space allocator: hands out page-aligned,
 * contiguous per-core regions. The reproduction uses identity VA->PA
 * mapping with per-core bases (documented in DESIGN.md): line adjacency
 * within a page — the property BAI exploits — is exactly preserved,
 * and page-granularity data classes stay consistent across the system.
 */

#ifndef DICE_WORKLOADS_ADDRESS_SPACE_HPP
#define DICE_WORKLOADS_ADDRESS_SPACE_HPP

#include "common/types.hpp"

namespace dice
{

/** Bump allocator over the simulated physical line space. */
class AddressSpace
{
  public:
    /**
     * Reserve @p lines lines (rounded up to a page multiple), plus a
     * guard page so regions never share a page.
     * @return the first line of the region.
     */
    LineAddr
    allocate(std::uint64_t lines)
    {
        const std::uint64_t pages =
            (lines + kLinesPerPage - 1) / kLinesPerPage + 1;
        const LineAddr start = next_;
        next_ += pages * kLinesPerPage;
        return start;
    }

    /** Total lines reserved so far. */
    std::uint64_t linesAllocated() const { return next_; }

  private:
    LineAddr next_ = kLinesPerPage; // keep line 0 unused
};

} // namespace dice

#endif // DICE_WORKLOADS_ADDRESS_SPACE_HPP
