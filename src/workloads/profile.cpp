#include "profile.hpp"

#include "common/log.hpp"

namespace dice
{

namespace
{

/** Shorthand builder keeping the tables below readable. */
WorkloadProfile
make(const char *name, double footprint_gb, double mpki, double wz,
     double wp, double wi, double w36, double wh, double wr, double seq,
     double stride, double rnd, double write_frac, double hot_frac,
     double hot_bias)
{
    WorkloadProfile p;
    p.name = name;
    p.rand_obj_lines = 1;
    p.footprint_gb = footprint_gb;
    p.l3_mpki = mpki;
    p.w_zero = wz;
    p.w_ptr = wp;
    p.w_int = wi;
    p.w_c36 = w36;
    p.w_half = wh;
    p.w_rand = wr;
    p.seq_frac = seq;
    p.stride_frac = stride;
    p.rand_frac = rnd;
    p.write_frac = write_frac;
    p.hot_frac = hot_frac;
    p.hot_bias = hot_bias;
    return p;
}

} // namespace

const std::vector<WorkloadProfile> &
specRateSuite()
{
    // Footprint / MPKI from Table 3; compressibility from Figure 4.
    static const std::vector<WorkloadProfile> suite = {
        //   name       fp(GB) mpki   z    ptr  int  c36  half rand  seq  str  rnd   wr   hotf hotb
        make("mcf",      13.2, 53.6, .10, .35, .25, .08, .10, .12, .15, .10, .75, .25, .10, .60),
        make("lbm",       3.2, 27.5, .02, .03, .03, .05, .37, .50, .85, .10, .05, .45, .50, .20),
        make("soplex",    1.9, 26.8, .08, .22, .22, .10, .18, .20, .50, .20, .30, .30, .20, .70),
        make("milc",      2.9, 25.7, .05, .12, .15, .08, .25, .35, .30, .40, .30, .30, .25, .60),
        make("gcc",      0.26, 22.7, .15, .25, .20, .08, .12, .20, .50, .15, .35, .30, .30, .80),
        make("libq",     0.25, 22.2, .01, .02, .02, .03, .30, .62, .90, .05, .05, .25, .50, .30),
        make("Gems",      6.4, 17.2, .02, .04, .04, .05, .25, .60, .60, .20, .20, .35, .25, .60),
        make("omnetpp",   1.3, 16.4, .12, .35, .25, .08, .08, .12, .20, .15, .65, .30, .15, .75),
        make("leslie3d", 0.62, 14.6, .06, .18, .20, .08, .22, .26, .60, .20, .20, .35, .30, .60),
        make("sphinx",   0.13, 12.9, .04, .12, .14, .06, .28, .36, .30, .20, .50, .15, .30, .80),
        make("zeusmp",    2.9,  5.2, .10, .22, .22, .10, .16, .20, .60, .20, .20, .35, .30, .60),
        make("wrf",       1.4,  5.1, .08, .20, .20, .10, .20, .22, .60, .20, .20, .35, .30, .60),
        make("cactus",    3.3,  4.9, .08, .20, .20, .12, .18, .22, .70, .15, .15, .35, .30, .60),
        make("astar",     1.1,  4.5, .12, .30, .26, .08, .10, .14, .20, .20, .60, .30, .20, .75),
        make("bzip2",     2.5,  3.6, .06, .18, .20, .08, .22, .26, .50, .20, .30, .35, .25, .70),
        make("xalanc",    1.9,  2.2, .10, .25, .23, .08, .14, .20, .30, .20, .50, .30, .20, .75),
    };
    // Pointer-chasing codes traverse multi-line nodes: even "random"
    // traffic touches spatial pairs (the reuse BAI converts into
    // bandwidth). Streaming kernels re-touch recent lines rarely.
    static const bool tagged = [] {
        auto &s = const_cast<std::vector<WorkloadProfile> &>(suite);
        for (auto &p : s) {
            if (p.name == "mcf" || p.name == "omnetpp" ||
                p.name == "astar" || p.name == "xalanc") {
                p.rand_obj_lines = 2;
            }
            if (p.name == "lbm" || p.name == "libq") {
                p.l3_reuse_frac = 0.10;
            }
        }
        return true;
    }();
    (void)tagged;
    return suite;
}

const std::vector<WorkloadProfile> &
gapSuite()
{
    // Graph kernels on twitter / web sk-2005: CSR index arrays are
    // highly compressible (Table 5 reports ~5x effective capacity
    // under BAI); access pattern mixes edge streaming with power-law
    // random vertex access.
    static const std::vector<WorkloadProfile> suite = {
        make("bc_twi",   19.7,  69.7, .18, .36, .22, .06, .06, .12, .35, .10, .55, .20, .05, .70),
        make("bc_web",   25.0,  17.7, .20, .38, .22, .06, .05, .09, .40, .10, .50, .20, .05, .70),
        make("cc_twi",   14.3,  93.9, .20, .38, .24, .05, .05, .08, .35, .10, .55, .15, .05, .70),
        make("cc_web",   16.0,   9.4, .20, .40, .24, .05, .04, .07, .40, .10, .50, .15, .05, .70),
        make("pr_twi",   23.1, 112.9, .18, .36, .24, .06, .06, .10, .35, .10, .55, .25, .05, .70),
        make("pr_web",   25.2,  16.7, .20, .38, .24, .05, .05, .08, .40, .10, .50, .25, .05, .70),
    };
    // Graph kernels read multi-line vertex records and edge-list runs.
    static const bool tagged = [] {
        auto &s = const_cast<std::vector<WorkloadProfile> &>(suite);
        for (auto &p : s)
            p.rand_obj_lines = 2;
        return true;
    }();
    (void)tagged;
    return suite;
}

const std::vector<WorkloadProfile> &
nonIntensiveSuite()
{
    // SPEC benchmarks with L3 MPKI < 2 (Figure 13): mostly fit in the
    // on-chip hierarchy.
    static const std::vector<WorkloadProfile> suite = {
        make("bwaves",    0.40, 1.8, .06, .18, .20, .08, .22, .26, .70, .15, .15, .30, .40, .70),
        make("calculix",  0.10, 0.6, .08, .20, .22, .08, .20, .22, .60, .20, .20, .30, .40, .70),
        make("dealII",    0.15, 1.0, .10, .22, .22, .08, .18, .20, .50, .20, .30, .30, .40, .70),
        make("gamess",    0.05, 0.2, .08, .20, .22, .08, .20, .22, .50, .20, .30, .30, .40, .70),
        make("gobmk",     0.08, 0.5, .10, .22, .22, .08, .18, .20, .30, .20, .50, .30, .40, .70),
        make("gromacs",   0.10, 0.7, .06, .18, .20, .08, .24, .24, .60, .20, .20, .30, .40, .70),
        make("h264",      0.06, 0.4, .08, .20, .20, .08, .22, .22, .50, .25, .25, .30, .40, .70),
        make("hmmer",     0.05, 0.3, .08, .20, .22, .08, .20, .22, .60, .20, .20, .30, .40, .70),
        make("namd",      0.10, 0.5, .06, .18, .20, .08, .24, .24, .60, .20, .20, .30, .40, .70),
        make("perlbench", 0.12, 1.2, .12, .24, .22, .08, .14, .20, .30, .20, .50, .30, .40, .70),
        make("povray",    0.04, 0.2, .08, .20, .22, .08, .20, .22, .40, .20, .40, .30, .40, .70),
        make("sjeng",     0.15, 0.9, .10, .22, .22, .08, .18, .20, .30, .20, .50, .30, .40, .70),
        make("tonto",     0.06, 0.4, .08, .20, .22, .08, .20, .22, .50, .20, .30, .30, .40, .70),
    };
    return suite;
}

const std::vector<std::vector<WorkloadProfile>> &
mixSuite()
{
    // Four 8-thread mixes of randomly-chosen SPEC benchmarks
    // (fixed selections for reproducibility).
    static const std::vector<std::vector<WorkloadProfile>> suite = [] {
        const auto &spec = specRateSuite();
        auto pick = [&spec](std::initializer_list<int> idx) {
            std::vector<WorkloadProfile> mix;
            for (int i : idx)
                mix.push_back(spec[static_cast<std::size_t>(i)]);
            return mix;
        };
        std::vector<std::vector<WorkloadProfile>> mixes;
        mixes.push_back(pick({0, 2, 4, 7, 9, 11, 13, 15}));  // mix1
        mixes.push_back(pick({1, 3, 5, 6, 8, 10, 12, 14}));  // mix2
        mixes.push_back(pick({0, 1, 4, 5, 8, 9, 12, 13}));   // mix3
        mixes.push_back(pick({2, 3, 6, 7, 10, 11, 14, 15})); // mix4
        return mixes;
    }();
    return suite;
}

const WorkloadProfile &
profileByName(const std::string &name)
{
    for (const auto *suite :
         {&specRateSuite(), &gapSuite(), &nonIntensiveSuite()}) {
        for (const auto &p : *suite) {
            if (p.name == name)
                return p;
        }
    }
    dice_fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
all26Names()
{
    std::vector<std::string> names;
    for (const auto &p : specRateSuite())
        names.push_back(p.name);
    for (std::size_t i = 0; i < mixSuite().size(); ++i)
        names.push_back("mix" + std::to_string(i + 1));
    for (const auto &p : gapSuite())
        names.push_back(p.name);
    return names;
}

} // namespace dice
