file(REMOVE_RECURSE
  "CMakeFiles/test_tad.dir/test_tad.cpp.o"
  "CMakeFiles/test_tad.dir/test_tad.cpp.o.d"
  "test_tad"
  "test_tad.pdb"
  "test_tad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
