# Empty compiler generated dependencies file for test_tad.
# This may be replaced when dependencies are built.
