# Empty dependencies file for test_indexing.
# This may be replaced when dependencies are built.
