file(REMOVE_RECURSE
  "CMakeFiles/test_indexing.dir/test_indexing.cpp.o"
  "CMakeFiles/test_indexing.dir/test_indexing.cpp.o.d"
  "test_indexing"
  "test_indexing.pdb"
  "test_indexing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
