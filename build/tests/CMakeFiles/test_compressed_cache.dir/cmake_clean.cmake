file(REMOVE_RECURSE
  "CMakeFiles/test_compressed_cache.dir/test_compressed_cache.cpp.o"
  "CMakeFiles/test_compressed_cache.dir/test_compressed_cache.cpp.o.d"
  "test_compressed_cache"
  "test_compressed_cache.pdb"
  "test_compressed_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compressed_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
