# Empty dependencies file for test_compressed_cache.
# This may be replaced when dependencies are built.
