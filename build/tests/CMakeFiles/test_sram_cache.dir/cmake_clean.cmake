file(REMOVE_RECURSE
  "CMakeFiles/test_sram_cache.dir/test_sram_cache.cpp.o"
  "CMakeFiles/test_sram_cache.dir/test_sram_cache.cpp.o.d"
  "test_sram_cache"
  "test_sram_cache.pdb"
  "test_sram_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sram_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
