# Empty compiler generated dependencies file for test_bdi.
# This may be replaced when dependencies are built.
