file(REMOVE_RECURSE
  "CMakeFiles/test_alloy.dir/test_alloy.cpp.o"
  "CMakeFiles/test_alloy.dir/test_alloy.cpp.o.d"
  "test_alloy"
  "test_alloy.pdb"
  "test_alloy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
