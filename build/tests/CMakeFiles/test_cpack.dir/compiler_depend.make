# Empty compiler generated dependencies file for test_cpack.
# This may be replaced when dependencies are built.
