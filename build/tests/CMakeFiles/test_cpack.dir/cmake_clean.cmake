file(REMOVE_RECURSE
  "CMakeFiles/test_cpack.dir/test_cpack.cpp.o"
  "CMakeFiles/test_cpack.dir/test_cpack.cpp.o.d"
  "test_cpack"
  "test_cpack.pdb"
  "test_cpack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
