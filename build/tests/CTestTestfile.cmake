# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_bitops[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_fpc[1]_include.cmake")
include("/root/repo/build/tests/test_bdi[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_sram_cache[1]_include.cmake")
include("/root/repo/build/tests/test_indexing[1]_include.cmake")
include("/root/repo/build/tests/test_tad[1]_include.cmake")
include("/root/repo/build/tests/test_predictors[1]_include.cmake")
include("/root/repo/build/tests/test_alloy[1]_include.cmake")
include("/root/repo/build/tests/test_compressed_cache[1]_include.cmake")
include("/root/repo/build/tests/test_scc[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_cpack[1]_include.cmake")
include("/root/repo/build/tests/test_trace_file[1]_include.cmake")
