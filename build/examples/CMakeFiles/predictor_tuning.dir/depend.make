# Empty dependencies file for predictor_tuning.
# This may be replaced when dependencies are built.
