file(REMOVE_RECURSE
  "CMakeFiles/indexing_study.dir/indexing_study.cpp.o"
  "CMakeFiles/indexing_study.dir/indexing_study.cpp.o.d"
  "indexing_study"
  "indexing_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indexing_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
