# Empty dependencies file for indexing_study.
# This may be replaced when dependencies are built.
