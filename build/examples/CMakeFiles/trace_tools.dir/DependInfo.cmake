
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/trace_tools.cpp" "examples/CMakeFiles/trace_tools.dir/trace_tools.cpp.o" "gcc" "examples/CMakeFiles/trace_tools.dir/trace_tools.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dice_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dice_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dice_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/dice_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dice_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dice_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dice_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
