# Empty dependencies file for dice_common.
# This may be replaced when dependencies are built.
