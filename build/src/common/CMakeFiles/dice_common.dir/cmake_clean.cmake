file(REMOVE_RECURSE
  "CMakeFiles/dice_common.dir/log.cpp.o"
  "CMakeFiles/dice_common.dir/log.cpp.o.d"
  "CMakeFiles/dice_common.dir/stats.cpp.o"
  "CMakeFiles/dice_common.dir/stats.cpp.o.d"
  "libdice_common.a"
  "libdice_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dice_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
