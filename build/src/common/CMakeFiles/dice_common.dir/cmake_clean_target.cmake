file(REMOVE_RECURSE
  "libdice_common.a"
)
