file(REMOVE_RECURSE
  "libdice_compress.a"
)
