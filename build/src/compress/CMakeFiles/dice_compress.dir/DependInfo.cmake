
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bdi.cpp" "src/compress/CMakeFiles/dice_compress.dir/bdi.cpp.o" "gcc" "src/compress/CMakeFiles/dice_compress.dir/bdi.cpp.o.d"
  "/root/repo/src/compress/compressor.cpp" "src/compress/CMakeFiles/dice_compress.dir/compressor.cpp.o" "gcc" "src/compress/CMakeFiles/dice_compress.dir/compressor.cpp.o.d"
  "/root/repo/src/compress/cpack.cpp" "src/compress/CMakeFiles/dice_compress.dir/cpack.cpp.o" "gcc" "src/compress/CMakeFiles/dice_compress.dir/cpack.cpp.o.d"
  "/root/repo/src/compress/fpc.cpp" "src/compress/CMakeFiles/dice_compress.dir/fpc.cpp.o" "gcc" "src/compress/CMakeFiles/dice_compress.dir/fpc.cpp.o.d"
  "/root/repo/src/compress/hybrid.cpp" "src/compress/CMakeFiles/dice_compress.dir/hybrid.cpp.o" "gcc" "src/compress/CMakeFiles/dice_compress.dir/hybrid.cpp.o.d"
  "/root/repo/src/compress/zca.cpp" "src/compress/CMakeFiles/dice_compress.dir/zca.cpp.o" "gcc" "src/compress/CMakeFiles/dice_compress.dir/zca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dice_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
