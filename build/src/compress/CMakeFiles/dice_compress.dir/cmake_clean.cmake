file(REMOVE_RECURSE
  "CMakeFiles/dice_compress.dir/bdi.cpp.o"
  "CMakeFiles/dice_compress.dir/bdi.cpp.o.d"
  "CMakeFiles/dice_compress.dir/compressor.cpp.o"
  "CMakeFiles/dice_compress.dir/compressor.cpp.o.d"
  "CMakeFiles/dice_compress.dir/cpack.cpp.o"
  "CMakeFiles/dice_compress.dir/cpack.cpp.o.d"
  "CMakeFiles/dice_compress.dir/fpc.cpp.o"
  "CMakeFiles/dice_compress.dir/fpc.cpp.o.d"
  "CMakeFiles/dice_compress.dir/hybrid.cpp.o"
  "CMakeFiles/dice_compress.dir/hybrid.cpp.o.d"
  "CMakeFiles/dice_compress.dir/zca.cpp.o"
  "CMakeFiles/dice_compress.dir/zca.cpp.o.d"
  "libdice_compress.a"
  "libdice_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dice_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
