# Empty compiler generated dependencies file for dice_compress.
# This may be replaced when dependencies are built.
