file(REMOVE_RECURSE
  "libdice_workloads.a"
)
