# Empty compiler generated dependencies file for dice_workloads.
# This may be replaced when dependencies are built.
