
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/datagen.cpp" "src/workloads/CMakeFiles/dice_workloads.dir/datagen.cpp.o" "gcc" "src/workloads/CMakeFiles/dice_workloads.dir/datagen.cpp.o.d"
  "/root/repo/src/workloads/profile.cpp" "src/workloads/CMakeFiles/dice_workloads.dir/profile.cpp.o" "gcc" "src/workloads/CMakeFiles/dice_workloads.dir/profile.cpp.o.d"
  "/root/repo/src/workloads/trace_file.cpp" "src/workloads/CMakeFiles/dice_workloads.dir/trace_file.cpp.o" "gcc" "src/workloads/CMakeFiles/dice_workloads.dir/trace_file.cpp.o.d"
  "/root/repo/src/workloads/tracegen.cpp" "src/workloads/CMakeFiles/dice_workloads.dir/tracegen.cpp.o" "gcc" "src/workloads/CMakeFiles/dice_workloads.dir/tracegen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dice_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dice_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/dice_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dice_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dice_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
