file(REMOVE_RECURSE
  "CMakeFiles/dice_workloads.dir/datagen.cpp.o"
  "CMakeFiles/dice_workloads.dir/datagen.cpp.o.d"
  "CMakeFiles/dice_workloads.dir/profile.cpp.o"
  "CMakeFiles/dice_workloads.dir/profile.cpp.o.d"
  "CMakeFiles/dice_workloads.dir/trace_file.cpp.o"
  "CMakeFiles/dice_workloads.dir/trace_file.cpp.o.d"
  "CMakeFiles/dice_workloads.dir/tracegen.cpp.o"
  "CMakeFiles/dice_workloads.dir/tracegen.cpp.o.d"
  "libdice_workloads.a"
  "libdice_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dice_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
