file(REMOVE_RECURSE
  "CMakeFiles/dice_sim.dir/core_model.cpp.o"
  "CMakeFiles/dice_sim.dir/core_model.cpp.o.d"
  "CMakeFiles/dice_sim.dir/energy.cpp.o"
  "CMakeFiles/dice_sim.dir/energy.cpp.o.d"
  "CMakeFiles/dice_sim.dir/memory.cpp.o"
  "CMakeFiles/dice_sim.dir/memory.cpp.o.d"
  "CMakeFiles/dice_sim.dir/system.cpp.o"
  "CMakeFiles/dice_sim.dir/system.cpp.o.d"
  "libdice_sim.a"
  "libdice_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dice_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
