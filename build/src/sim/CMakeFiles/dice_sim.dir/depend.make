# Empty dependencies file for dice_sim.
# This may be replaced when dependencies are built.
