file(REMOVE_RECURSE
  "libdice_sim.a"
)
