# Empty compiler generated dependencies file for dice_core.
# This may be replaced when dependencies are built.
