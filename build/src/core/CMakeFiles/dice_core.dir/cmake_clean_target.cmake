file(REMOVE_RECURSE
  "libdice_core.a"
)
