
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/alloy.cpp" "src/core/CMakeFiles/dice_core.dir/alloy.cpp.o" "gcc" "src/core/CMakeFiles/dice_core.dir/alloy.cpp.o.d"
  "/root/repo/src/core/cip.cpp" "src/core/CMakeFiles/dice_core.dir/cip.cpp.o" "gcc" "src/core/CMakeFiles/dice_core.dir/cip.cpp.o.d"
  "/root/repo/src/core/compressed.cpp" "src/core/CMakeFiles/dice_core.dir/compressed.cpp.o" "gcc" "src/core/CMakeFiles/dice_core.dir/compressed.cpp.o.d"
  "/root/repo/src/core/data_source.cpp" "src/core/CMakeFiles/dice_core.dir/data_source.cpp.o" "gcc" "src/core/CMakeFiles/dice_core.dir/data_source.cpp.o.d"
  "/root/repo/src/core/dram_cache.cpp" "src/core/CMakeFiles/dice_core.dir/dram_cache.cpp.o" "gcc" "src/core/CMakeFiles/dice_core.dir/dram_cache.cpp.o.d"
  "/root/repo/src/core/indexing.cpp" "src/core/CMakeFiles/dice_core.dir/indexing.cpp.o" "gcc" "src/core/CMakeFiles/dice_core.dir/indexing.cpp.o.d"
  "/root/repo/src/core/mapi.cpp" "src/core/CMakeFiles/dice_core.dir/mapi.cpp.o" "gcc" "src/core/CMakeFiles/dice_core.dir/mapi.cpp.o.d"
  "/root/repo/src/core/scc.cpp" "src/core/CMakeFiles/dice_core.dir/scc.cpp.o" "gcc" "src/core/CMakeFiles/dice_core.dir/scc.cpp.o.d"
  "/root/repo/src/core/tad.cpp" "src/core/CMakeFiles/dice_core.dir/tad.cpp.o" "gcc" "src/core/CMakeFiles/dice_core.dir/tad.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dice_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/dice_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dice_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dice_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
