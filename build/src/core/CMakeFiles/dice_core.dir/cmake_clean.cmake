file(REMOVE_RECURSE
  "CMakeFiles/dice_core.dir/alloy.cpp.o"
  "CMakeFiles/dice_core.dir/alloy.cpp.o.d"
  "CMakeFiles/dice_core.dir/cip.cpp.o"
  "CMakeFiles/dice_core.dir/cip.cpp.o.d"
  "CMakeFiles/dice_core.dir/compressed.cpp.o"
  "CMakeFiles/dice_core.dir/compressed.cpp.o.d"
  "CMakeFiles/dice_core.dir/data_source.cpp.o"
  "CMakeFiles/dice_core.dir/data_source.cpp.o.d"
  "CMakeFiles/dice_core.dir/dram_cache.cpp.o"
  "CMakeFiles/dice_core.dir/dram_cache.cpp.o.d"
  "CMakeFiles/dice_core.dir/indexing.cpp.o"
  "CMakeFiles/dice_core.dir/indexing.cpp.o.d"
  "CMakeFiles/dice_core.dir/mapi.cpp.o"
  "CMakeFiles/dice_core.dir/mapi.cpp.o.d"
  "CMakeFiles/dice_core.dir/scc.cpp.o"
  "CMakeFiles/dice_core.dir/scc.cpp.o.d"
  "CMakeFiles/dice_core.dir/tad.cpp.o"
  "CMakeFiles/dice_core.dir/tad.cpp.o.d"
  "libdice_core.a"
  "libdice_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dice_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
