file(REMOVE_RECURSE
  "libdice_dram.a"
)
