file(REMOVE_RECURSE
  "CMakeFiles/dice_dram.dir/dram.cpp.o"
  "CMakeFiles/dice_dram.dir/dram.cpp.o.d"
  "libdice_dram.a"
  "libdice_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dice_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
