# Empty compiler generated dependencies file for dice_dram.
# This may be replaced when dependencies are built.
