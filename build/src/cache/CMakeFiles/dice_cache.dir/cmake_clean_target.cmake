file(REMOVE_RECURSE
  "libdice_cache.a"
)
