# Empty dependencies file for dice_cache.
# This may be replaced when dependencies are built.
