file(REMOVE_RECURSE
  "CMakeFiles/dice_cache.dir/sram_cache.cpp.o"
  "CMakeFiles/dice_cache.dir/sram_cache.cpp.o.d"
  "libdice_cache.a"
  "libdice_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dice_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
