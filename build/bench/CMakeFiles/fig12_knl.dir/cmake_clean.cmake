file(REMOVE_RECURSE
  "CMakeFiles/fig12_knl.dir/fig12_knl.cpp.o"
  "CMakeFiles/fig12_knl.dir/fig12_knl.cpp.o.d"
  "fig12_knl"
  "fig12_knl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_knl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
