# Empty dependencies file for fig12_knl.
# This may be replaced when dependencies are built.
