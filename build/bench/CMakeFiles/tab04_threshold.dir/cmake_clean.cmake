file(REMOVE_RECURSE
  "CMakeFiles/tab04_threshold.dir/tab04_threshold.cpp.o"
  "CMakeFiles/tab04_threshold.dir/tab04_threshold.cpp.o.d"
  "tab04_threshold"
  "tab04_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
