# Empty compiler generated dependencies file for tab04_threshold.
# This may be replaced when dependencies are built.
