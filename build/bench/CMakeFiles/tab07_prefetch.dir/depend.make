# Empty dependencies file for tab07_prefetch.
# This may be replaced when dependencies are built.
