file(REMOVE_RECURSE
  "CMakeFiles/tab07_prefetch.dir/tab07_prefetch.cpp.o"
  "CMakeFiles/tab07_prefetch.dir/tab07_prefetch.cpp.o.d"
  "tab07_prefetch"
  "tab07_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab07_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
