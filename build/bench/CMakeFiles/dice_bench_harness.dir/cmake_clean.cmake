file(REMOVE_RECURSE
  "CMakeFiles/dice_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/dice_bench_harness.dir/harness.cpp.o.d"
  "libdice_bench_harness.a"
  "libdice_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dice_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
