# Empty dependencies file for dice_bench_harness.
# This may be replaced when dependencies are built.
