file(REMOVE_RECURSE
  "libdice_bench_harness.a"
)
