file(REMOVE_RECURSE
  "CMakeFiles/fig15_scc.dir/fig15_scc.cpp.o"
  "CMakeFiles/fig15_scc.dir/fig15_scc.cpp.o.d"
  "fig15_scc"
  "fig15_scc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_scc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
