# Empty compiler generated dependencies file for fig15_scc.
# This may be replaced when dependencies are built.
