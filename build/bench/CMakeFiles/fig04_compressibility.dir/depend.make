# Empty dependencies file for fig04_compressibility.
# This may be replaced when dependencies are built.
