file(REMOVE_RECURSE
  "CMakeFiles/fig04_compressibility.dir/fig04_compressibility.cpp.o"
  "CMakeFiles/fig04_compressibility.dir/fig04_compressibility.cpp.o.d"
  "fig04_compressibility"
  "fig04_compressibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_compressibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
