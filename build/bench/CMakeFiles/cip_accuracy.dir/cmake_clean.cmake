file(REMOVE_RECURSE
  "CMakeFiles/cip_accuracy.dir/cip_accuracy.cpp.o"
  "CMakeFiles/cip_accuracy.dir/cip_accuracy.cpp.o.d"
  "cip_accuracy"
  "cip_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cip_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
