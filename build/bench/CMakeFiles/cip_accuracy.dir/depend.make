# Empty dependencies file for cip_accuracy.
# This may be replaced when dependencies are built.
