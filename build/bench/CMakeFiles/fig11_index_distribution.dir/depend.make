# Empty dependencies file for fig11_index_distribution.
# This may be replaced when dependencies are built.
