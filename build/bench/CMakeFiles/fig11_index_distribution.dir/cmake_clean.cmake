file(REMOVE_RECURSE
  "CMakeFiles/fig11_index_distribution.dir/fig11_index_distribution.cpp.o"
  "CMakeFiles/fig11_index_distribution.dir/fig11_index_distribution.cpp.o.d"
  "fig11_index_distribution"
  "fig11_index_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_index_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
