# Empty dependencies file for fig13_nonintensive.
# This may be replaced when dependencies are built.
