file(REMOVE_RECURSE
  "CMakeFiles/fig13_nonintensive.dir/fig13_nonintensive.cpp.o"
  "CMakeFiles/fig13_nonintensive.dir/fig13_nonintensive.cpp.o.d"
  "fig13_nonintensive"
  "fig13_nonintensive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_nonintensive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
