# Empty dependencies file for tab06_l3_hitrate.
# This may be replaced when dependencies are built.
