file(REMOVE_RECURSE
  "CMakeFiles/tab06_l3_hitrate.dir/tab06_l3_hitrate.cpp.o"
  "CMakeFiles/tab06_l3_hitrate.dir/tab06_l3_hitrate.cpp.o.d"
  "tab06_l3_hitrate"
  "tab06_l3_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_l3_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
