file(REMOVE_RECURSE
  "CMakeFiles/tab08_sensitivity.dir/tab08_sensitivity.cpp.o"
  "CMakeFiles/tab08_sensitivity.dir/tab08_sensitivity.cpp.o.d"
  "tab08_sensitivity"
  "tab08_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab08_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
