# Empty compiler generated dependencies file for tab08_sensitivity.
# This may be replaced when dependencies are built.
