# Empty dependencies file for tab05_capacity.
# This may be replaced when dependencies are built.
