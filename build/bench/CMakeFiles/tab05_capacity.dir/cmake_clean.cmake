file(REMOVE_RECURSE
  "CMakeFiles/tab05_capacity.dir/tab05_capacity.cpp.o"
  "CMakeFiles/tab05_capacity.dir/tab05_capacity.cpp.o.d"
  "tab05_capacity"
  "tab05_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
