file(REMOVE_RECURSE
  "CMakeFiles/fig07_tsi_bai.dir/fig07_tsi_bai.cpp.o"
  "CMakeFiles/fig07_tsi_bai.dir/fig07_tsi_bai.cpp.o.d"
  "fig07_tsi_bai"
  "fig07_tsi_bai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_tsi_bai.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
