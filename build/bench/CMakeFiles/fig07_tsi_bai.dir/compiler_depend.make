# Empty compiler generated dependencies file for fig07_tsi_bai.
# This may be replaced when dependencies are built.
