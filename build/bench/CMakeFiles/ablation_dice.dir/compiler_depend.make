# Empty compiler generated dependencies file for ablation_dice.
# This may be replaced when dependencies are built.
