file(REMOVE_RECURSE
  "CMakeFiles/ablation_dice.dir/ablation_dice.cpp.o"
  "CMakeFiles/ablation_dice.dir/ablation_dice.cpp.o.d"
  "ablation_dice"
  "ablation_dice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
