file(REMOVE_RECURSE
  "CMakeFiles/fig10_dice.dir/fig10_dice.cpp.o"
  "CMakeFiles/fig10_dice.dir/fig10_dice.cpp.o.d"
  "fig10_dice"
  "fig10_dice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
