# Empty dependencies file for fig10_dice.
# This may be replaced when dependencies are built.
